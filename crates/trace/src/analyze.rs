//! Trace analyzers: per-kind event accounting, the §3.4.2
//! prediction-accuracy report, and wake-up latency percentiles.

use crate::event::{TraceEvent, TraceEventKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use tb_sim::{OnlineStats, QuantileSketch};

/// How many events of each kind a trace contains.
///
/// These counts are the trace-side mirror of the machine's
/// `BarrierEventCounts`: for a loss-free trace of the same run, each field
/// here equals the corresponding aggregate counter (e.g. `sleep_starts` ==
/// total sleeps, `releases` == episodes), which is exactly what the
/// acceptance tests assert.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceKindCounts {
    /// Early (non-releasing) arrivals.
    pub arrivals: u64,
    /// Releasing (last) arrivals.
    pub last_arrivals: u64,
    /// Usable BIT predictions produced.
    pub predictions: u64,
    /// Sleep entries.
    pub sleep_starts: u64,
    /// Conventional spin entries.
    pub spin_starts: u64,
    /// Dirty-line write-backs before non-snoopable sleeps.
    pub flushes: u64,
    /// Internal-timer wake-ups.
    pub internal_wakes: u64,
    /// Release-invalidation wake-ups.
    pub external_wakes: u64,
    /// Spurious wake-ups.
    pub false_wakes: u64,
    /// Wake-ups early enough to fall into the residual spin.
    pub residual_spins: u64,
    /// Barrier releases (episodes).
    pub releases: u64,
    /// Releases whose predictor update the §3.4.2 filter skipped.
    pub releases_update_skipped: u64,
    /// Departures from the barrier.
    pub departs: u64,
    /// §3.3.3 cut-off trips.
    pub cutoff_disables: u64,
    /// Faults injected by the `tb-faults` layer.
    pub faults_injected: u64,
    /// Guard-timer rescues of threads whose wake-up path failed.
    pub guard_recoveries: u64,
    /// Barrier sites entering predictor quarantine.
    pub quarantine_enters: u64,
    /// Barrier sites leaving predictor quarantine.
    pub quarantine_leaves: u64,
    /// Supervisor retries of transiently failed sweep cells.
    pub cell_retries: u64,
}

impl TraceKindCounts {
    /// Tallies a slice of events.
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut c = TraceKindCounts::default();
        for ev in events {
            match ev.kind {
                TraceEventKind::Arrival { last: false, .. } => c.arrivals += 1,
                TraceEventKind::Arrival { last: true, .. } => c.last_arrivals += 1,
                TraceEventKind::Prediction { .. } => c.predictions += 1,
                TraceEventKind::SleepStart { .. } => c.sleep_starts += 1,
                TraceEventKind::SpinStart { .. } => c.spin_starts += 1,
                TraceEventKind::Flush { .. } => c.flushes += 1,
                TraceEventKind::InternalWake { .. } => c.internal_wakes += 1,
                TraceEventKind::ExternalWake { .. } => c.external_wakes += 1,
                TraceEventKind::FalseWake { .. } => c.false_wakes += 1,
                TraceEventKind::ResidualSpin { .. } => c.residual_spins += 1,
                TraceEventKind::Release { update_skipped, .. } => {
                    c.releases += 1;
                    if update_skipped {
                        c.releases_update_skipped += 1;
                    }
                }
                TraceEventKind::Depart { .. } => c.departs += 1,
                TraceEventKind::CutoffDisable { .. } => c.cutoff_disables += 1,
                TraceEventKind::FaultInjected { .. } => c.faults_injected += 1,
                TraceEventKind::GuardRecovery { .. } => c.guard_recoveries += 1,
                TraceEventKind::Quarantine { entered: true, .. } => c.quarantine_enters += 1,
                TraceEventKind::Quarantine { entered: false, .. } => c.quarantine_leaves += 1,
                TraceEventKind::CellRetry { .. } => c.cell_retries += 1,
            }
        }
        c
    }

    /// Total events tallied.
    pub fn total(&self) -> u64 {
        self.arrivals
            + self.last_arrivals
            + self.predictions
            + self.sleep_starts
            + self.spin_starts
            + self.flushes
            + self.internal_wakes
            + self.external_wakes
            + self.false_wakes
            + self.residual_spins
            + self.releases
            + self.departs
            + self.cutoff_disables
            + self.faults_injected
            + self.guard_recoveries
            + self.quarantine_enters
            + self.quarantine_leaves
            + self.cell_retries
    }
}

/// Wake-up latency percentiles (cycles from barrier release to departure).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WakeLatencySummary {
    /// Departures of threads that actually slept this episode.
    pub samples: u64,
    /// Median latency.
    pub p50: f64,
    /// 95th-percentile latency.
    pub p95: f64,
    /// 99th-percentile latency.
    pub p99: f64,
    /// Exact worst-case latency.
    pub max: u64,
}

/// Streaming wake-up latency accumulator over `Depart` events.
///
/// Two populations are kept: departures of threads that entered a sleep
/// state during the episode (the population the paper's wake-up-cost
/// argument is about), and all departures.
#[derive(Debug, Clone, Default)]
pub struct WakeLatencyReport {
    /// Latencies of departures preceded by a sleep.
    pub sleepers: QuantileSketch,
    /// Latencies of every departure.
    pub all: QuantileSketch,
}

impl WakeLatencyReport {
    /// Builds the report from a time-ordered event slice.
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut report = WakeLatencyReport::default();
        let mut slept: BTreeMap<u32, bool> = BTreeMap::new();
        for ev in events {
            match ev.kind {
                TraceEventKind::SleepStart { .. } => {
                    slept.insert(ev.thread, true);
                }
                TraceEventKind::Depart { wake_latency, .. } => {
                    report.all.push(wake_latency.as_u64());
                    if slept.insert(ev.thread, false) == Some(true) {
                        report.sleepers.push(wake_latency.as_u64());
                    }
                }
                _ => {}
            }
        }
        report
    }

    /// The sleeper-population percentiles, for embedding in run reports.
    pub fn summary(&self) -> WakeLatencySummary {
        WakeLatencySummary {
            samples: self.sleepers.count(),
            p50: self.sleepers.quantile(0.50).unwrap_or(0.0),
            p95: self.sleepers.quantile(0.95).unwrap_or(0.0),
            p99: self.sleepers.quantile(0.99).unwrap_or(0.0),
            max: self.sleepers.max().unwrap_or(0),
        }
    }
}

/// Compact per-run trace digest embedded in `RunReport` when tracing is on.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Events retained by the sink.
    pub events: u64,
    /// Events the sink dropped (ring overflow).
    pub dropped: u64,
    /// Per-kind tallies of the retained events.
    pub counts: TraceKindCounts,
    /// Wake-up latency percentiles over sleeping threads.
    pub wake_latency: WakeLatencySummary,
}

impl TraceSummary {
    /// Digests a drained trace. `dropped` comes from the sink.
    pub fn from_events(events: &[TraceEvent], dropped: u64) -> Self {
        TraceSummary {
            events: events.len() as u64,
            dropped,
            counts: TraceKindCounts::from_events(events),
            wake_latency: WakeLatencyReport::from_events(events).summary(),
        }
    }
}

/// Prediction accuracy at one barrier site (PC).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PcAccuracy {
    /// The barrier site PC.
    pub pc: u64,
    /// Predictions paired with a measured release at this site.
    pub predictions: u64,
    /// Predictions below the measured BIT (the dangerous direction:
    /// §3.4.2's inordinately-long-episode concern).
    pub underpredictions: u64,
    /// Predictions above the measured BIT.
    pub overpredictions: u64,
    /// Relative error distribution `|predicted − measured| / measured`.
    pub rel_error: OnlineStats,
}

/// The §3.4.2 prediction-accuracy report: per-PC error distribution and
/// the underprediction rate, reconstructed from `prediction` and `release`
/// events (paired on `(pc, episode)` — both kinds are emitted by the
/// algorithm with per-site instance numbering).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PredictionAccuracyReport {
    /// Per-site accuracy, ordered by PC.
    pub per_pc: Vec<PcAccuracy>,
    /// Releases whose predictor update the underprediction filter skipped.
    pub skipped_updates: u64,
    /// Predictions with no matching release in the trace (ring overflow
    /// or a truncated run); excluded from the error statistics.
    pub unmatched_predictions: u64,
}

impl PredictionAccuracyReport {
    /// Builds the report from a drained trace.
    pub fn from_events(events: &[TraceEvent]) -> Self {
        // (pc, episode) → measured BIT, from the single release per episode.
        let mut measured: BTreeMap<(u64, u64), u64> = BTreeMap::new();
        let mut skipped_updates = 0u64;
        for ev in events {
            if let TraceEventKind::Release {
                episode,
                pc,
                measured_bit,
                update_skipped,
            } = ev.kind
            {
                measured.insert((pc, episode), measured_bit.as_u64());
                if update_skipped {
                    skipped_updates += 1;
                }
            }
        }

        let mut per_pc: BTreeMap<u64, PcAccuracy> = BTreeMap::new();
        let mut unmatched = 0u64;
        for ev in events {
            let TraceEventKind::Prediction {
                episode,
                pc,
                predicted_bit,
                ..
            } = ev.kind
            else {
                continue;
            };
            let Some(&actual) = measured.get(&(pc, episode)) else {
                unmatched += 1;
                continue;
            };
            let acc = per_pc.entry(pc).or_insert_with(|| PcAccuracy {
                pc,
                predictions: 0,
                underpredictions: 0,
                overpredictions: 0,
                rel_error: OnlineStats::new(),
            });
            acc.predictions += 1;
            let predicted = predicted_bit.as_u64();
            if predicted < actual {
                acc.underpredictions += 1;
            } else if predicted > actual {
                acc.overpredictions += 1;
            }
            if actual > 0 {
                acc.rel_error
                    .push((predicted as f64 - actual as f64).abs() / actual as f64);
            }
        }

        PredictionAccuracyReport {
            per_pc: per_pc.into_values().collect(),
            skipped_updates,
            unmatched_predictions: unmatched,
        }
    }

    /// Total paired predictions across all sites.
    pub fn total_predictions(&self) -> u64 {
        self.per_pc.iter().map(|p| p.predictions).sum()
    }

    /// Total underpredictions across all sites.
    pub fn underpredictions(&self) -> u64 {
        self.per_pc.iter().map(|p| p.underpredictions).sum()
    }

    /// Fraction of paired predictions that undershot the measured BIT,
    /// or 0.0 with no predictions.
    pub fn underprediction_rate(&self) -> f64 {
        let n = self.total_predictions();
        if n == 0 {
            0.0
        } else {
            self.underpredictions() as f64 / n as f64
        }
    }
}

impl fmt::Display for PredictionAccuracyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "predictions={} underprediction_rate={:.3} skipped_updates={} unmatched={}",
            self.total_predictions(),
            self.underprediction_rate(),
            self.skipped_updates,
            self.unmatched_predictions
        )?;
        for p in &self.per_pc {
            writeln!(
                f,
                "  pc={:#06x} n={} under={} over={} rel_error: {}",
                p.pc, p.predictions, p.underpredictions, p.overpredictions, p.rel_error
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_sim::Cycles;

    fn ev(at: u64, thread: usize, kind: TraceEventKind) -> TraceEvent {
        TraceEvent::new(Cycles::new(at), thread, kind)
    }

    #[test]
    fn kind_counts_split_arrivals_and_skips() {
        let events = vec![
            ev(
                1,
                0,
                TraceEventKind::Arrival {
                    episode: 0,
                    pc: 1,
                    last: false,
                },
            ),
            ev(
                2,
                1,
                TraceEventKind::Arrival {
                    episode: 0,
                    pc: 1,
                    last: true,
                },
            ),
            ev(
                2,
                1,
                TraceEventKind::Release {
                    episode: 0,
                    pc: 1,
                    measured_bit: Cycles::new(10),
                    update_skipped: true,
                },
            ),
        ];
        let c = TraceKindCounts::from_events(&events);
        assert_eq!(c.arrivals, 1);
        assert_eq!(c.last_arrivals, 1);
        assert_eq!(c.releases, 1);
        assert_eq!(c.releases_update_skipped, 1);
        assert_eq!(c.total(), 3);
        assert_eq!(c.total(), events.len() as u64);
    }

    #[test]
    fn kind_counts_tally_fault_events() {
        use crate::event::FaultKind;
        let events = vec![
            ev(
                1,
                0,
                TraceEventKind::FaultInjected {
                    episode: 0,
                    pc: 1,
                    fault: FaultKind::LostWakeup,
                },
            ),
            ev(
                2,
                0,
                TraceEventKind::GuardRecovery {
                    episode: 0,
                    pc: 1,
                    slept: true,
                },
            ),
            ev(
                3,
                0,
                TraceEventKind::Quarantine {
                    episode: 1,
                    pc: 1,
                    entered: true,
                },
            ),
            ev(
                4,
                0,
                TraceEventKind::Quarantine {
                    episode: 5,
                    pc: 1,
                    entered: false,
                },
            ),
            ev(
                5,
                0,
                TraceEventKind::CellRetry {
                    episode: 2,
                    pc: 0,
                    attempt: 1,
                    timed_out: true,
                },
            ),
        ];
        let c = TraceKindCounts::from_events(&events);
        assert_eq!(c.faults_injected, 1);
        assert_eq!(c.guard_recoveries, 1);
        assert_eq!(c.quarantine_enters, 1);
        assert_eq!(c.quarantine_leaves, 1);
        assert_eq!(c.cell_retries, 1);
        assert_eq!(c.total(), events.len() as u64);
    }

    #[test]
    fn wake_latency_counts_only_sleepers() {
        let events = vec![
            ev(
                10,
                0,
                TraceEventKind::SleepStart {
                    episode: 0,
                    pc: 1,
                    state: 1,
                    needs_flush: false,
                },
            ),
            ev(15, 1, TraceEventKind::SpinStart { episode: 0, pc: 1 }),
            ev(
                50,
                0,
                TraceEventKind::Depart {
                    episode: 0,
                    pc: 1,
                    wake_latency: Cycles::new(30),
                },
            ),
            ev(
                51,
                1,
                TraceEventKind::Depart {
                    episode: 0,
                    pc: 1,
                    wake_latency: Cycles::new(1),
                },
            ),
            // Thread 0 departs again without sleeping: not a sleeper sample.
            ev(
                90,
                0,
                TraceEventKind::Depart {
                    episode: 1,
                    pc: 1,
                    wake_latency: Cycles::new(99),
                },
            ),
        ];
        let r = WakeLatencyReport::from_events(&events);
        assert_eq!(r.sleepers.count(), 1);
        assert_eq!(r.all.count(), 3);
        let s = r.summary();
        assert_eq!(s.samples, 1);
        assert_eq!(s.max, 30);
        assert_eq!(s.p50, 30.0);
    }

    #[test]
    fn accuracy_pairs_predictions_with_releases() {
        let mut events = Vec::new();
        // Site 0x10, episode 0: predicted 80, measured 100 (under).
        // Site 0x10, episode 1: predicted 120 by two threads, measured 100
        // (over, twice). Site 0x20, episode 0: prediction unmatched.
        events.push(ev(
            1,
            0,
            TraceEventKind::Prediction {
                episode: 0,
                pc: 0x10,
                predicted_bit: Cycles::new(80),
                predicted_stall: Cycles::new(40),
            },
        ));
        events.push(ev(
            2,
            1,
            TraceEventKind::Release {
                episode: 0,
                pc: 0x10,
                measured_bit: Cycles::new(100),
                update_skipped: false,
            },
        ));
        for t in 0..2 {
            events.push(ev(
                10 + t,
                t as usize,
                TraceEventKind::Prediction {
                    episode: 1,
                    pc: 0x10,
                    predicted_bit: Cycles::new(120),
                    predicted_stall: Cycles::new(60),
                },
            ));
        }
        events.push(ev(
            20,
            2,
            TraceEventKind::Release {
                episode: 1,
                pc: 0x10,
                measured_bit: Cycles::new(100),
                update_skipped: true,
            },
        ));
        events.push(ev(
            30,
            0,
            TraceEventKind::Prediction {
                episode: 0,
                pc: 0x20,
                predicted_bit: Cycles::new(5),
                predicted_stall: Cycles::new(2),
            },
        ));

        let r = PredictionAccuracyReport::from_events(&events);
        assert_eq!(r.per_pc.len(), 1);
        assert_eq!(r.total_predictions(), 3);
        assert_eq!(r.underpredictions(), 1);
        assert_eq!(r.per_pc[0].overpredictions, 2);
        assert!((r.underprediction_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.skipped_updates, 1);
        assert_eq!(r.unmatched_predictions, 1);
        // Errors: 0.2, 0.2, 0.2 → mean 0.2.
        assert!((r.per_pc[0].rel_error.mean() - 0.2).abs() < 1e-12);
        assert!(!r.to_string().is_empty());
    }

    #[test]
    fn trace_summary_round_trips_through_json() {
        let events = vec![ev(1, 0, TraceEventKind::SpinStart { episode: 0, pc: 1 })];
        let s = TraceSummary::from_events(&events, 7);
        assert_eq!(s.events, 1);
        assert_eq!(s.dropped, 7);
        let back: TraceSummary = serde::json::from_str(&serde::json::to_string(&s)).unwrap();
        assert_eq!(back.counts, s.counts);
        assert_eq!(back.dropped, 7);
    }
}
