//! Trace exporters: newline-delimited JSON for ad-hoc tooling and the
//! Chrome `trace_event` JSON flavor that Perfetto and `chrome://tracing`
//! load directly.

use crate::event::{TraceEvent, TraceEventKind};
use serde::{json, Value};

/// Renders one event per line as JSON (JSONL). Line order follows the input
/// slice; pass the output of a sink's `drain_sorted` for time order.
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&json::to_string(ev));
        out.push('\n');
    }
    out
}

/// The `pid` every exported event is attributed to; the whole simulated
/// machine is presented as one Perfetto "process" with one track per
/// thread.
const PERFETTO_PID: u64 = 1;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Map(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn metadata(tid: u64, what: &str, name: &str) -> Value {
    obj(vec![
        ("ph", Value::Str("M".into())),
        ("pid", Value::U64(PERFETTO_PID)),
        ("tid", Value::U64(tid)),
        ("name", Value::Str(what.into())),
        ("args", obj(vec![("name", Value::Str(name.into()))])),
    ])
}

/// The variant-specific payload shown in the Perfetto event details pane.
fn args_for(kind: &TraceEventKind) -> Value {
    let mut fields = vec![
        ("episode", Value::U64(kind.episode())),
        ("pc", Value::U64(kind.pc())),
    ];
    match *kind {
        TraceEventKind::Arrival { last, .. } => {
            fields.push(("last", Value::Bool(last)));
        }
        TraceEventKind::Prediction {
            predicted_bit,
            predicted_stall,
            ..
        } => {
            fields.push(("predicted_bit", Value::U64(predicted_bit.as_u64())));
            fields.push(("predicted_stall", Value::U64(predicted_stall.as_u64())));
        }
        TraceEventKind::SleepStart {
            state, needs_flush, ..
        } => {
            fields.push(("state", Value::U64(state as u64)));
            fields.push(("needs_flush", Value::Bool(needs_flush)));
        }
        TraceEventKind::Flush {
            lines, duration, ..
        } => {
            fields.push(("lines", Value::U64(lines)));
            fields.push(("duration", Value::U64(duration.as_u64())));
        }
        TraceEventKind::Release {
            measured_bit,
            update_skipped,
            ..
        } => {
            fields.push(("measured_bit", Value::U64(measured_bit.as_u64())));
            fields.push(("update_skipped", Value::Bool(update_skipped)));
        }
        TraceEventKind::Depart { wake_latency, .. } => {
            fields.push(("wake_latency", Value::U64(wake_latency.as_u64())));
        }
        TraceEventKind::CutoffDisable { penalty, .. } => {
            fields.push(("penalty", Value::U64(penalty.as_u64())));
        }
        TraceEventKind::FaultInjected { fault, .. } => {
            fields.push(("fault", Value::Str(fault.name().into())));
        }
        TraceEventKind::GuardRecovery { slept, .. } => {
            fields.push(("slept", Value::Bool(slept)));
        }
        TraceEventKind::Quarantine { entered, .. } => {
            fields.push(("entered", Value::Bool(entered)));
        }
        TraceEventKind::CellRetry {
            attempt, timed_out, ..
        } => {
            fields.push(("attempt", Value::U64(attempt as u64)));
            fields.push(("timed_out", Value::Bool(timed_out)));
        }
        TraceEventKind::SpinStart { .. }
        | TraceEventKind::InternalWake { .. }
        | TraceEventKind::ExternalWake { .. }
        | TraceEventKind::FalseWake { .. }
        | TraceEventKind::ResidualSpin { .. } => {}
    }
    obj(fields)
}

/// What an event does to its thread's occupancy track: open a named span,
/// close whatever is open, or neither.
fn span_action(kind: &TraceEventKind) -> SpanAction {
    match kind {
        TraceEventKind::SleepStart { state, .. } => SpanAction::Open(format!("sleep(S{state})")),
        TraceEventKind::SpinStart { .. } => SpanAction::Open("spin".to_string()),
        TraceEventKind::ResidualSpin { .. } => SpanAction::Open("residual spin".to_string()),
        TraceEventKind::InternalWake { .. }
        | TraceEventKind::ExternalWake { .. }
        | TraceEventKind::FalseWake { .. }
        | TraceEventKind::Depart { .. } => SpanAction::Close,
        _ => SpanAction::None,
    }
}

enum SpanAction {
    Open(String),
    Close,
    None,
}

/// Renders events as a Chrome `trace_event` JSON document that Perfetto
/// (<https://ui.perfetto.dev>) and `chrome://tracing` open directly.
///
/// Every trace record becomes an `"i"` (instant) event on its thread's
/// track. In addition, sleep, spin, and residual-spin periods are
/// reconstructed into `"X"` (complete) spans — per-thread wait-state
/// occupancy timelines — by pairing each `sleep_start` / `spin_start` /
/// `residual_spin` with the next wake-up or departure on the same thread.
/// Timestamps are microseconds (the format's unit) at 1 cycle = 1 ns.
pub fn to_perfetto(events: &[TraceEvent], process_name: &str) -> String {
    let threads: u64 = events
        .iter()
        .map(|e| e.thread as u64 + 1)
        .max()
        .unwrap_or(0);
    let mut records: Vec<Value> = Vec::with_capacity(events.len() + threads as usize + 1);
    records.push(metadata(0, "process_name", process_name));
    for tid in 0..threads {
        records.push(metadata(tid, "thread_name", &format!("cpu {tid}")));
    }

    // Per-thread open occupancy span: (name, start time in cycles).
    let mut open: Vec<Option<(String, u64)>> = vec![None; threads as usize];
    for ev in events {
        let tid = ev.thread as usize;
        let close_open = |open: &mut Option<(String, u64)>, records: &mut Vec<Value>| {
            if let Some((name, start)) = open.take() {
                let dur = ev.at.as_u64().saturating_sub(start);
                records.push(obj(vec![
                    ("name", Value::Str(name)),
                    ("cat", Value::Str("occupancy".into())),
                    ("ph", Value::Str("X".into())),
                    ("ts", Value::F64(start as f64 / 1_000.0)),
                    ("dur", Value::F64(dur as f64 / 1_000.0)),
                    ("pid", Value::U64(PERFETTO_PID)),
                    ("tid", Value::U64(tid as u64)),
                ]));
            }
        };
        match span_action(&ev.kind) {
            SpanAction::Open(name) => {
                // An unterminated span (shouldn't happen) ends where the
                // next one starts rather than leaking.
                close_open(&mut open[tid], &mut records);
                open[tid] = Some((name, ev.at.as_u64()));
            }
            SpanAction::Close => close_open(&mut open[tid], &mut records),
            SpanAction::None => {}
        }
        records.push(obj(vec![
            ("name", Value::Str(ev.kind.name().into())),
            ("cat", Value::Str("barrier".into())),
            ("ph", Value::Str("i".into())),
            ("ts", Value::F64(ev.at.as_micros_f64())),
            ("pid", Value::U64(PERFETTO_PID)),
            ("tid", Value::U64(tid as u64)),
            ("s", Value::Str("t".into())),
            ("args", args_for(&ev.kind)),
        ]));
    }

    let doc = obj(vec![
        ("displayTimeUnit", Value::Str("ns".into())),
        ("traceEvents", Value::Seq(records)),
    ]);
    json::to_string(&doc)
}

/// Number of `"i"` instant records a Perfetto document exported from
/// `events` will contain — by construction exactly `events.len()`, exposed
/// so acceptance checks can assert it against the parsed document.
pub fn perfetto_instant_count(doc: &Value) -> usize {
    match doc.get("traceEvents") {
        Some(Value::Seq(records)) => records
            .iter()
            .filter(|r| matches!(r.get("ph"), Some(Value::Str(ph)) if ph == "i"))
            .count(),
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_sim::Cycles;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::new(
                Cycles::new(100),
                0,
                TraceEventKind::Arrival {
                    episode: 0,
                    pc: 16,
                    last: false,
                },
            ),
            TraceEvent::new(
                Cycles::new(110),
                0,
                TraceEventKind::SleepStart {
                    episode: 0,
                    pc: 16,
                    state: 2,
                    needs_flush: true,
                },
            ),
            TraceEvent::new(
                Cycles::new(400),
                1,
                TraceEventKind::SpinStart { episode: 0, pc: 16 },
            ),
            TraceEvent::new(
                Cycles::new(900),
                0,
                TraceEventKind::ExternalWake { episode: 0, pc: 16 },
            ),
            TraceEvent::new(
                Cycles::new(950),
                0,
                TraceEventKind::Depart {
                    episode: 0,
                    pc: 16,
                    wake_latency: Cycles::new(50),
                },
            ),
            TraceEvent::new(
                Cycles::new(955),
                1,
                TraceEventKind::Depart {
                    episode: 0,
                    pc: 16,
                    wake_latency: Cycles::ZERO,
                },
            ),
        ]
    }

    #[test]
    fn jsonl_one_line_per_event() {
        let events = sample_events();
        let out = to_jsonl(&events);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), events.len());
        for line in &lines {
            assert!(json::parse(line).is_ok(), "invalid JSON line: {line}");
        }
        let back: TraceEvent = json::from_str(lines[0]).unwrap();
        assert_eq!(back, events[0]);
    }

    #[test]
    fn perfetto_document_is_valid_and_complete() {
        let events = sample_events();
        let out = to_perfetto(&events, "thrifty-barrier");
        let doc = json::parse(&out).expect("valid JSON");
        assert!(matches!(
            doc.get("displayTimeUnit"),
            Some(Value::Str(u)) if u == "ns"
        ));
        // Every trace record appears as exactly one instant.
        assert_eq!(perfetto_instant_count(&doc), events.len());
        let Some(Value::Seq(records)) = doc.get("traceEvents") else {
            panic!("traceEvents missing");
        };
        // Metadata: one process name + one thread name per thread.
        let meta = records
            .iter()
            .filter(|r| matches!(r.get("ph"), Some(Value::Str(ph)) if ph == "M"))
            .count();
        assert_eq!(meta, 3);
        // Occupancy spans: thread 0's sleep closed by the external wake,
        // thread 1's spin closed by its departure.
        let spans: Vec<&Value> = records
            .iter()
            .filter(|r| matches!(r.get("ph"), Some(Value::Str(ph)) if ph == "X"))
            .collect();
        assert_eq!(spans.len(), 2);
        assert!(matches!(
            spans[0].get("name"),
            Some(Value::Str(n)) if n == "sleep(S2)"
        ));
        assert_eq!(spans[0].get("ts"), Some(&Value::F64(0.110)));
        assert_eq!(spans[0].get("dur"), Some(&Value::F64(0.790)));
        assert!(matches!(
            spans[1].get("name"),
            Some(Value::Str(n)) if n == "spin"
        ));
    }

    #[test]
    fn perfetto_empty_trace_is_still_loadable() {
        let out = to_perfetto(&[], "empty");
        let doc = json::parse(&out).unwrap();
        assert_eq!(perfetto_instant_count(&doc), 0);
    }
}
