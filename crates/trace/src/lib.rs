#![warn(missing_docs)]
//! Per-episode barrier tracing for the thrifty-barrier reproduction.
//!
//! The simulator and the real-threads runtime both expose *aggregate*
//! counters; this crate captures the *sequence* — every arrival, BIT
//! prediction, sleep-state entry, flush, wake-up, and departure as a
//! timestamped, thread-attributed event — cheaply enough to leave compiled
//! in:
//!
//! * [`event`] — the fixed-size, `Copy` event vocabulary
//!   ([`TraceEvent`], [`TraceEventKind`]).
//! * [`ring`] — bounded storage: [`EventRing`] (overwrite-oldest) and the
//!   lock-free [`SpscRing`] used by real threads.
//! * [`sink`] — the [`TraceSink`] trait and the [`SinkHandle`] that
//!   instrumented components embed; a disabled handle reduces `emit` to a
//!   single branch.
//! * [`export`] — JSONL and Chrome/Perfetto `trace_event` exporters
//!   (load the latter at <https://ui.perfetto.dev>).
//! * [`analyze`] — per-kind accounting ([`TraceKindCounts`]), the §3.4.2
//!   prediction-accuracy report ([`PredictionAccuracyReport`]), and
//!   wake-up latency percentiles ([`WakeLatencyReport`]).
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use tb_sim::Cycles;
//! use tb_trace::{MemorySink, SinkHandle, TraceEvent, TraceEventKind, TraceSummary};
//!
//! let sink = Arc::new(MemorySink::new(2, 1024));
//! let handle = SinkHandle::new(sink.clone());
//! handle.emit(TraceEvent::new(
//!     Cycles::new(5),
//!     0,
//!     TraceEventKind::SpinStart { episode: 0, pc: 0x10 },
//! ));
//! let events = sink.drain_sorted();
//! let summary = TraceSummary::from_events(&events, sink.dropped());
//! assert_eq!(summary.counts.spin_starts, 1);
//! ```

pub mod analyze;
pub mod event;
pub mod export;
pub mod ring;
pub mod sink;

pub use analyze::{
    PcAccuracy, PredictionAccuracyReport, TraceKindCounts, TraceSummary, WakeLatencyReport,
    WakeLatencySummary,
};
pub use event::{FaultKind, TraceEvent, TraceEventKind};
pub use export::{perfetto_instant_count, to_jsonl, to_perfetto};
pub use ring::{EventRing, SpscRing};
pub use sink::{MemorySink, NullSink, SinkHandle, SpscSink, TraceSink};
