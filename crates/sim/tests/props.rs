//! Property-based tests of the discrete-event kernel.

use proptest::prelude::*;
use tb_sim::{Cycles, EventQueue, Histogram, OnlineStats, SimRng};

proptest! {
    /// Pops come back in nondecreasing time order, FIFO among ties, and
    /// every scheduled (uncancelled) event is delivered exactly once.
    #[test]
    fn event_queue_orders_and_conserves(
        times in proptest::collection::vec(0u64..1_000, 1..200),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..200),
    ) {
        let mut q = EventQueue::new();
        let mut ids = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            ids.push((q.schedule(Cycles::new(t), i), t, i));
        }
        let mut cancelled = std::collections::HashSet::new();
        for ((id, _, i), &c) in ids.iter().zip(cancel_mask.iter().cycle()) {
            if c {
                prop_assert!(q.cancel(*id));
                cancelled.insert(*i);
            }
        }
        let mut delivered = Vec::new();
        let mut last = Cycles::ZERO;
        while let Some((at, i)) = q.pop() {
            prop_assert!(at >= last, "time order violated");
            // FIFO among equal times: sequence indices increase.
            if let Some(&(prev_at, prev_i)) = delivered.last() {
                if prev_at == at {
                    prop_assert!(i > prev_i, "FIFO violated among ties");
                }
            }
            prop_assert_eq!(Cycles::new(times[i]), at, "delivered at wrong time");
            prop_assert!(!cancelled.contains(&i), "cancelled event delivered");
            delivered.push((at, i));
            last = at;
        }
        prop_assert_eq!(delivered.len(), times.len() - cancelled.len());
    }

    /// Merging two accumulators equals accumulating the concatenation.
    #[test]
    fn stats_merge_equals_sequential(
        xs in proptest::collection::vec(-1e6f64..1e6, 0..100),
        ys in proptest::collection::vec(-1e6f64..1e6, 0..100),
    ) {
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        let mut all = OnlineStats::new();
        for &x in &xs { a.push(x); all.push(x); }
        for &y in &ys { b.push(y); all.push(y); }
        a.merge(&b);
        prop_assert_eq!(a.count(), all.count());
        if all.count() > 0 {
            prop_assert!((a.mean() - all.mean()).abs() < 1e-6 * (1.0 + all.mean().abs()));
            prop_assert!(
                (a.population_variance() - all.population_variance()).abs()
                    < 1e-4 * (1.0 + all.population_variance())
            );
        }
    }

    /// Histograms conserve sample counts across bins and extremes.
    #[test]
    fn histogram_conserves_counts(
        xs in proptest::collection::vec(-50.0f64..150.0, 0..300),
    ) {
        let mut h = Histogram::new(0.0, 100.0, 10);
        for &x in &xs { h.push(x); }
        let binned: u64 = h.buckets().iter().sum();
        prop_assert_eq!(binned + h.underflow() + h.overflow(), xs.len() as u64);
        prop_assert_eq!(h.count(), xs.len() as u64);
    }

    /// Quantiles are monotone in the requested probability.
    #[test]
    fn histogram_quantiles_monotone(
        xs in proptest::collection::vec(0.0f64..100.0, 1..300),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let mut h = Histogram::new(0.0, 100.0, 20);
        for &x in &xs { h.push(x); }
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(h.quantile(lo).unwrap() <= h.quantile(hi).unwrap());
    }

    /// Derived RNG streams are reproducible and label/index separated.
    #[test]
    fn rng_derivation_reproducible(seed in any::<u64>(), idx in 0u64..1000) {
        let a: Vec<u64> = {
            let mut r = SimRng::new(seed).derive("x", idx);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SimRng::new(seed).derive("x", idx);
            (0..8).map(|_| r.next_u64()).collect()
        };
        prop_assert_eq!(&a, &b);
        let mut other = SimRng::new(seed).derive("x", idx.wrapping_add(1));
        let c: Vec<u64> = (0..8).map(|_| other.next_u64()).collect();
        prop_assert_ne!(a, c);
    }

    /// Uniform draws stay in range; shuffles are permutations.
    #[test]
    fn rng_ranges_and_shuffles(seed in any::<u64>(), lo in -100.0f64..0.0, width in 0.1f64..100.0) {
        let mut r = SimRng::new(seed);
        for _ in 0..100 {
            let v = r.uniform_range(lo, lo + width);
            prop_assert!(v >= lo && v < lo + width);
        }
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    /// Cycles arithmetic: saturating subtraction and deltas agree.
    #[test]
    fn cycles_delta_consistency(a in 0u64..u64::MAX / 2, b in 0u64..u64::MAX / 2) {
        let (ca, cb) = (Cycles::new(a), Cycles::new(b));
        let d = ca.delta(cb);
        prop_assert_eq!(d.abs(), if a >= b { ca - cb } else { cb - ca });
        prop_assert_eq!(d.late_by(), ca.saturating_sub(cb));
        prop_assert_eq!(d.is_positive(), a > b);
    }
}
