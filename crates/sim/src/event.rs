//! A cancellable discrete-event priority queue.
//!
//! The thrifty barrier's hybrid wake-up (§3.3.2 of the paper) needs exactly
//! the semantics provided here: two independent wake-up events (external
//! invalidation, internal timer) may be pending for the same CPU, and
//! whichever fires first must *cancel* the other. [`EventQueue::cancel`]
//! makes that a constant-time tombstone operation.
//!
//! Events at the same timestamp are delivered in FIFO scheduling order, so a
//! simulation that schedules deterministically replays deterministically.
//!
//! # Implementation
//!
//! Payloads live in a generation-tagged slab (`Vec<Slot<E>>` plus a free
//! list), so `schedule`/`cancel`/`pop` never hash and, once the slab and
//! heap have warmed up to the peak number of pending events, never
//! allocate. The binary heap orders `(time, seq)` keys packed into a
//! single `u128` (56-bit time, 40-bit sequence, 16-bit slot), so a heap
//! sift compares and moves one native integer instead of a multi-word
//! struct. A cancelled event leaves its key behind as a tombstone, which
//! is dropped lazily. Two mechanisms bound the tombstone population:
//!
//! * the heap *top* is kept live after every mutation, so
//!   [`EventQueue::peek_time`] is a true `&self` peek, and
//! * when tombstones outnumber live events the heap is compacted in place,
//!   so a cancel-heavy run cannot grow the heap unboundedly.

use crate::time::Cycles;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// Opaque handle identifying a scheduled event, returned by
/// [`EventQueue::schedule`] and accepted by [`EventQueue::cancel`].
///
/// Packs the slab slot index and its generation tag, so a handle kept
/// across its event's delivery (or cancellation) can never alias a later
/// event that reuses the slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

impl EventId {
    fn new(slot: u32, gen: u32) -> Self {
        EventId((gen as u64) << 32 | slot as u64)
    }

    fn slot(self) -> usize {
        (self.0 & u32::MAX as u64) as usize
    }

    fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "event#{}", self.0)
    }
}

/// One slab slot: the payload of a pending event, or empty (free or
/// already delivered/cancelled). The generation tag increments on every
/// free, invalidating outstanding [`EventId`]s; the pending event's
/// sequence number is what heap keys are checked against for liveness.
#[derive(Debug)]
struct Slot<E> {
    gen: u32,
    seq: u64,
    event: Option<E>,
}

/// Width of the sequence-number field of a packed [`HeapKey`].
const SEQ_BITS: u32 = 40;
/// Width of the slot-index field of a packed [`HeapKey`].
const SLOT_BITS: u32 = 16;
/// Width of the time field of a packed [`HeapKey`] (56 bits; the top 16
/// bits of the `u128` stay zero).
const AT_BITS: u32 = 56;

/// Heap key: `(time, seq, slot)` packed into one `u128`, highest field
/// first, so the integer ordering of the packed value *is* the delivery
/// order `(time, seq)` (`seq` is unique, so the trailing `slot` bits never
/// decide a comparison — they only ride along to locate the payload).
/// `schedule` bounds-checks each field against its width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct HeapKey(u128);

impl HeapKey {
    fn pack(at: Cycles, seq: u64, slot: u32) -> HeapKey {
        HeapKey(
            ((at.as_u64() as u128) << (SEQ_BITS + SLOT_BITS))
                | ((seq as u128) << SLOT_BITS)
                | slot as u128,
        )
    }

    fn at(self) -> Cycles {
        Cycles::new((self.0 >> (SEQ_BITS + SLOT_BITS)) as u64)
    }

    fn seq(self) -> u64 {
        ((self.0 >> SLOT_BITS) & ((1 << SEQ_BITS) - 1)) as u64
    }

    fn slot(self) -> u32 {
        (self.0 & ((1 << SLOT_BITS) - 1)) as u32
    }
}

/// A time-ordered queue of events of type `E` with O(1) cancellation.
///
/// # Examples
///
/// ```
/// use tb_sim::{Cycles, EventQueue};
///
/// let mut q = EventQueue::new();
/// let timer = q.schedule(Cycles::new(100), "internal-timer");
/// q.schedule(Cycles::new(60), "external-invalidation");
/// // The invalidation arrives first, so the timer is cancelled:
/// let (t, what) = q.pop().unwrap();
/// assert_eq!((t, what), (Cycles::new(60), "external-invalidation"));
/// assert!(q.cancel(timer));
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<HeapKey>>,
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    live: usize,
    next_seq: u64,
    last_popped: Cycles,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            next_seq: 0,
            last_popped: Cycles::ZERO,
        }
    }

    /// Schedules `event` for delivery at absolute time `at`.
    ///
    /// Events scheduled for the same time are delivered in the order they
    /// were scheduled.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the delivery time of the most recently popped
    /// event: a discrete-event simulation may never schedule into its past.
    pub fn schedule(&mut self, at: Cycles, event: E) -> EventId {
        assert!(
            at >= self.last_popped,
            "cannot schedule event at {at}, simulation time already at {}",
            self.last_popped
        );
        assert!(
            at.as_u64() < 1 << AT_BITS,
            "event time {at} overflows the queue's {AT_BITS}-bit clock"
        );
        let seq = self.next_seq;
        assert!(
            seq < 1 << SEQ_BITS,
            "more than 2^{SEQ_BITS} events scheduled on one queue"
        );
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(s) => {
                let sl = &mut self.slots[s as usize];
                sl.seq = seq;
                sl.event = Some(event);
                s
            }
            None => {
                assert!(
                    self.slots.len() < 1 << SLOT_BITS,
                    "more than {} concurrently pending events",
                    1u32 << SLOT_BITS
                );
                let s = self.slots.len() as u32;
                self.slots.push(Slot {
                    gen: 0,
                    seq,
                    event: Some(event),
                });
                s
            }
        };
        let gen = self.slots[slot as usize].gen;
        self.heap.push(Reverse(HeapKey::pack(at, seq, slot)));
        self.live += 1;
        EventId::new(slot, gen)
    }

    /// `true` if the packed heap key still refers to a pending event: the
    /// slot must hold a payload whose sequence number matches (a slot
    /// reused by a later event carries a strictly newer sequence).
    fn key_is_live(&self, key: HeapKey) -> bool {
        let s = &self.slots[key.slot() as usize];
        s.seq == key.seq() && s.event.is_some()
    }

    /// `true` if `id` still refers to a pending event (handles use the
    /// generation tag, which survives slot reuse across the full run).
    fn id_is_live(&self, slot: u32, gen: u32) -> bool {
        let s = &self.slots[slot as usize];
        s.gen == gen && s.event.is_some()
    }

    /// Takes the payload out of a live slot, retiring the slot for reuse.
    fn retire(&mut self, slot: u32) -> E {
        let s = &mut self.slots[slot as usize];
        let ev = s.event.take().expect("retiring a live slot");
        s.gen = s.gen.wrapping_add(1);
        self.free.push(slot);
        self.live -= 1;
        ev
    }

    /// Restores the invariant that the heap top (if any) is a live event,
    /// dropping tombstones left by cancellations.
    fn drop_dead_top(&mut self) {
        while let Some(&Reverse(k)) = self.heap.peek() {
            if self.key_is_live(k) {
                break;
            }
            self.heap.pop();
        }
    }

    /// Compacts the heap in place once tombstones outnumber live events,
    /// bounding memory on cancel-heavy workloads. O(n) rebuild, amortized
    /// O(1) per cancel.
    fn maybe_compact(&mut self) {
        if self.heap.len() >= 64 && self.heap.len() > 2 * self.live {
            let mut keys = std::mem::take(&mut self.heap).into_vec();
            keys.retain(|&Reverse(k)| {
                let s = &self.slots[k.slot() as usize];
                s.seq == k.seq() && s.event.is_some()
            });
            self.heap = BinaryHeap::from(keys);
        }
    }

    /// Cancels a pending event.
    ///
    /// Returns `true` if the event was still pending (and is now dropped),
    /// `false` if it had already been delivered or cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let slot = id.slot();
        if slot >= self.slots.len() || !self.id_is_live(slot as u32, id.gen()) {
            return false;
        }
        drop(self.retire(slot as u32));
        self.drop_dead_top();
        self.maybe_compact();
        true
    }

    /// `true` if the event is still pending.
    pub fn is_pending(&self, id: EventId) -> bool {
        id.slot() < self.slots.len() && self.id_is_live(id.slot() as u32, id.gen())
    }

    /// Removes and returns the earliest pending event with its time, or
    /// `None` if the queue is empty.
    pub fn pop(&mut self) -> Option<(Cycles, E)> {
        // The top is live by invariant; the loop is a defensive fallback.
        while let Some(Reverse(k)) = self.heap.pop() {
            if self.key_is_live(k) {
                let ev = self.retire(k.slot());
                let at = k.at();
                self.last_popped = at;
                self.drop_dead_top();
                return Some((at, ev));
            }
        }
        None
    }

    /// The delivery time of the earliest pending event, without removing it.
    pub fn peek_time(&self) -> Option<Cycles> {
        // Mutations keep the heap top live (see `drop_dead_top`), so this
        // is a plain peek — no tombstone skipping, no `&mut` needed.
        self.heap.peek().map(|&Reverse(k)| {
            debug_assert!(self.key_is_live(k), "heap top must be live");
            k.at()
        })
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The delivery time of the most recently popped event — the current
    /// simulation time from the queue's perspective.
    pub fn now(&self) -> Cycles {
        self.last_popped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycles::new(30), 'c');
        q.schedule(Cycles::new(10), 'a');
        q.schedule(Cycles::new(20), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Cycles::new(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut q = EventQueue::new();
        let a = q.schedule(Cycles::new(1), "a");
        let b = q.schedule(Cycles::new(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        assert!(q.is_pending(b));
        assert!(!q.is_pending(a));
        assert_eq!(q.pop(), Some((Cycles::new(2), "b")));
        assert!(!q.cancel(b), "cancel after delivery reports false");
    }

    #[test]
    fn len_tracks_cancellation() {
        let mut q = EventQueue::new();
        let a = q.schedule(Cycles::new(1), ());
        q.schedule(Cycles::new(2), ());
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn peek_skips_tombstones() {
        let mut q = EventQueue::new();
        let a = q.schedule(Cycles::new(1), "a");
        q.schedule(Cycles::new(5), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(Cycles::new(5)));
        assert_eq!(q.pop(), Some((Cycles::new(5), "b")));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(Cycles::new(7), ());
        assert_eq!(q.now(), Cycles::ZERO);
        q.pop();
        assert_eq!(q.now(), Cycles::new(7));
    }

    #[test]
    #[should_panic(expected = "cannot schedule event")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(Cycles::new(10), ());
        q.pop();
        q.schedule(Cycles::new(9), ());
    }

    #[test]
    fn scheduling_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(Cycles::new(10), 1);
        q.pop();
        q.schedule(Cycles::new(10), 2);
        assert_eq!(q.pop(), Some((Cycles::new(10), 2)));
    }

    #[test]
    fn hybrid_wakeup_pattern() {
        // The motivating use: external wake-up beats internal timer; the
        // loser is cancelled and never delivered.
        let mut q = EventQueue::new();
        let internal = q.schedule(Cycles::from_micros(50), "internal");
        let external = q.schedule(Cycles::from_micros(40), "external");
        let (_, first) = q.pop().unwrap();
        assert_eq!(first, "external");
        assert!(q.is_pending(internal));
        assert!(!q.is_pending(external));
        assert!(q.cancel(internal));
        assert!(q.pop().is_none());
    }

    #[test]
    fn slot_reuse_does_not_alias_event_ids() {
        // The generation tag must keep a stale handle from cancelling a
        // later event that happens to reuse the same slab slot.
        let mut q = EventQueue::new();
        let a = q.schedule(Cycles::new(1), "a");
        assert!(q.cancel(a));
        let b = q.schedule(Cycles::new(2), "b"); // reuses slot 0
        assert!(!q.cancel(a), "stale id must not hit the reused slot");
        assert!(q.is_pending(b));
        assert_eq!(q.pop(), Some((Cycles::new(2), "b")));
    }

    #[test]
    fn peek_and_pop_agree_under_interleaved_cancels() {
        // Deterministic churn: schedule batches, cancel a pseudo-random
        // subset (including heap tops), and require that every peek
        // predicts exactly what pop then delivers.
        let mut q = EventQueue::new();
        let mut pending: Vec<(EventId, u64)> = Vec::new();
        let mut x = 0x2545F4914F6CDD1Du64;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut expected: Vec<(u64, u64)> = Vec::new(); // (time, payload)
        for round in 0..50u64 {
            for i in 0..20u64 {
                let t = q.now().as_u64() + 1 + rng() % 97;
                let payload = round * 1000 + i;
                let id = q.schedule(Cycles::new(t), payload);
                pending.push((id, payload));
            }
            // Cancel roughly half, in shuffled order.
            pending.retain(|&(id, _)| {
                if rng() % 2 == 0 {
                    assert!(q.cancel(id));
                    false
                } else {
                    true
                }
            });
            // Drain a few: peek must always agree with the next pop.
            for _ in 0..5 {
                let peeked = q.peek_time();
                let popped = q.pop();
                match (peeked, popped) {
                    (Some(pt), Some((t, payload))) => {
                        assert_eq!(pt, t, "peek promised {pt}, pop delivered {t}");
                        pending.retain(|&(_, p)| p != payload);
                        expected.push((t.as_u64(), payload));
                    }
                    (None, None) => {}
                    (p, q) => panic!("peek {p:?} disagrees with pop {q:?}"),
                }
            }
            assert_eq!(q.len(), pending.len());
        }
        // Drain the remainder; delivery must be time-ordered throughout.
        while let Some((t, payload)) = q.pop() {
            expected.push((t.as_u64(), payload));
        }
        for w in expected.windows(2) {
            assert!(w[0].0 <= w[1].0, "out-of-order delivery: {w:?}");
        }
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn cancel_heavy_churn_keeps_heap_bounded() {
        // A cancel-heavy workload (every event cancelled, none popped)
        // previously grew the heap without bound; compaction caps it at a
        // small multiple of the live population.
        let mut q = EventQueue::new();
        let mut keep: Vec<EventId> = (0..32)
            .map(|i| q.schedule(Cycles::new(1_000_000 + i), i))
            .collect();
        for i in 0..100_000u64 {
            let id = q.schedule(Cycles::new(2000 + i), i);
            assert!(q.cancel(id));
        }
        assert_eq!(q.len(), 32);
        assert!(
            q.heap.len() <= 2 * 64 + 32,
            "heap holds {} keys for 32 live events",
            q.heap.len()
        );
        // The survivors still come out in order.
        keep.reverse();
        let mut last = Cycles::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn no_allocation_after_warmup() {
        // After one full schedule/pop cycle at peak population, steady
        // state reuses slab slots and heap capacity: capacities must not
        // grow across further cycles.
        let mut q = EventQueue::new();
        for round in 0..3u64 {
            for i in 0..256u64 {
                q.schedule(Cycles::new(round * 10_000 + i), i);
            }
            while q.pop().is_some() {}
        }
        let slots_cap = q.slots.capacity();
        let heap_cap = q.heap.capacity();
        let free_cap = q.free.capacity();
        for round in 3..10u64 {
            for i in 0..256u64 {
                let id = q.schedule(Cycles::new(round * 10_000 + i), i);
                if i % 3 == 0 {
                    q.cancel(id);
                }
            }
            while q.pop().is_some() {}
        }
        assert_eq!(q.slots.capacity(), slots_cap, "slab regrew");
        assert_eq!(q.heap.capacity(), heap_cap, "heap regrew");
        assert_eq!(q.free.capacity(), free_cap, "free list regrew");
    }
}
