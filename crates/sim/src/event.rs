//! A cancellable discrete-event priority queue.
//!
//! The thrifty barrier's hybrid wake-up (§3.3.2 of the paper) needs exactly
//! the semantics provided here: two independent wake-up events (external
//! invalidation, internal timer) may be pending for the same CPU, and
//! whichever fires first must *cancel* the other. [`EventQueue::cancel`]
//! makes that a constant-time tombstone operation.
//!
//! Events at the same timestamp are delivered in FIFO scheduling order, so a
//! simulation that schedules deterministically replays deterministically.

use crate::time::Cycles;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::fmt;

/// Opaque handle identifying a scheduled event, returned by
/// [`EventQueue::schedule`] and accepted by [`EventQueue::cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "event#{}", self.0)
    }
}

/// A time-ordered queue of events of type `E` with O(1) cancellation.
///
/// # Examples
///
/// ```
/// use tb_sim::{Cycles, EventQueue};
///
/// let mut q = EventQueue::new();
/// let timer = q.schedule(Cycles::new(100), "internal-timer");
/// q.schedule(Cycles::new(60), "external-invalidation");
/// // The invalidation arrives first, so the timer is cancelled:
/// let (t, what) = q.pop().unwrap();
/// assert_eq!((t, what), (Cycles::new(60), "external-invalidation"));
/// assert!(q.cancel(timer));
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(Cycles, u64)>>,
    live: HashMap<u64, E>,
    next_seq: u64,
    last_popped: Cycles,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            live: HashMap::new(),
            next_seq: 0,
            last_popped: Cycles::ZERO,
        }
    }

    /// Schedules `event` for delivery at absolute time `at`.
    ///
    /// Events scheduled for the same time are delivered in the order they
    /// were scheduled.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the delivery time of the most recently popped
    /// event: a discrete-event simulation may never schedule into its past.
    pub fn schedule(&mut self, at: Cycles, event: E) -> EventId {
        assert!(
            at >= self.last_popped,
            "cannot schedule event at {at}, simulation time already at {}",
            self.last_popped
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse((at, seq)));
        self.live.insert(seq, event);
        EventId(seq)
    }

    /// Cancels a pending event.
    ///
    /// Returns `true` if the event was still pending (and is now dropped),
    /// `false` if it had already been delivered or cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.live.remove(&id.0).is_some()
    }

    /// `true` if the event is still pending.
    pub fn is_pending(&self, id: EventId) -> bool {
        self.live.contains_key(&id.0)
    }

    /// Removes and returns the earliest pending event with its time, or
    /// `None` if the queue is empty.
    pub fn pop(&mut self) -> Option<(Cycles, E)> {
        while let Some(Reverse((at, seq))) = self.heap.pop() {
            if let Some(ev) = self.live.remove(&seq) {
                self.last_popped = at;
                return Some((at, ev));
            }
            // Tombstone from a cancelled event: skip.
        }
        None
    }

    /// The delivery time of the earliest pending event, without removing it.
    pub fn peek_time(&mut self) -> Option<Cycles> {
        while let Some(&Reverse((at, seq))) = self.heap.peek() {
            if self.live.contains_key(&seq) {
                return Some(at);
            }
            self.heap.pop();
        }
        None
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// The delivery time of the most recently popped event — the current
    /// simulation time from the queue's perspective.
    pub fn now(&self) -> Cycles {
        self.last_popped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycles::new(30), 'c');
        q.schedule(Cycles::new(10), 'a');
        q.schedule(Cycles::new(20), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Cycles::new(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut q = EventQueue::new();
        let a = q.schedule(Cycles::new(1), "a");
        let b = q.schedule(Cycles::new(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        assert!(q.is_pending(b));
        assert!(!q.is_pending(a));
        assert_eq!(q.pop(), Some((Cycles::new(2), "b")));
        assert!(!q.cancel(b), "cancel after delivery reports false");
    }

    #[test]
    fn len_tracks_cancellation() {
        let mut q = EventQueue::new();
        let a = q.schedule(Cycles::new(1), ());
        q.schedule(Cycles::new(2), ());
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn peek_skips_tombstones() {
        let mut q = EventQueue::new();
        let a = q.schedule(Cycles::new(1), "a");
        q.schedule(Cycles::new(5), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(Cycles::new(5)));
        assert_eq!(q.pop(), Some((Cycles::new(5), "b")));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(Cycles::new(7), ());
        assert_eq!(q.now(), Cycles::ZERO);
        q.pop();
        assert_eq!(q.now(), Cycles::new(7));
    }

    #[test]
    #[should_panic(expected = "cannot schedule event")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(Cycles::new(10), ());
        q.pop();
        q.schedule(Cycles::new(9), ());
    }

    #[test]
    fn scheduling_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(Cycles::new(10), 1);
        q.pop();
        q.schedule(Cycles::new(10), 2);
        assert_eq!(q.pop(), Some((Cycles::new(10), 2)));
    }

    #[test]
    fn hybrid_wakeup_pattern() {
        // The motivating use: external wake-up beats internal timer; the
        // loser is cancelled and never delivered.
        let mut q = EventQueue::new();
        let internal = q.schedule(Cycles::from_micros(50), "internal");
        let external = q.schedule(Cycles::from_micros(40), "external");
        let (_, first) = q.pop().unwrap();
        assert_eq!(first, "external");
        assert!(q.is_pending(internal));
        assert!(!q.is_pending(external));
        assert!(q.cancel(internal));
        assert!(q.pop().is_none());
    }
}
