//! Tiny content-digest helper for golden-output drift detection.
//!
//! The benchmark and golden tests need a stable, dependency-free way to
//! fingerprint a report blob so that "output changed" is distinguishable
//! from "timing changed". FNV-1a over the raw bytes is plenty: it is
//! deterministic across platforms, trivially reimplementable from the
//! recorded constants, and collisions are irrelevant for drift detection.

/// 64-bit FNV-1a hash of `bytes`.
///
/// Uses the standard offset basis `0xcbf29ce484222325` and prime
/// `0x100000001b3`, so digests recorded in fixtures can be re-derived by
/// any FNV-1a implementation.
///
/// # Examples
///
/// ```
/// // Empty input hashes to the offset basis.
/// assert_eq!(tb_sim::digest::fnv1a64(b""), 0xcbf29ce484222325);
/// assert_eq!(tb_sim::digest::fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
/// ```
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// [`fnv1a64`] rendered as the 16-char lowercase hex string used in the
/// committed golden fixtures and `BENCH_sim.json`.
pub fn fnv1a64_hex(bytes: &[u8]) -> String {
    format!("{:016x}", fnv1a64(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hex_is_zero_padded() {
        assert_eq!(fnv1a64_hex(b"").len(), 16);
        assert_eq!(fnv1a64_hex(b""), "cbf29ce484222325");
    }
}
