//! Strongly-typed simulation time.
//!
//! The machine modeled in the paper (Table 1) runs its processors at a
//! nominal 1 GHz, so the kernel measures time in [`Cycles`] where one cycle
//! equals exactly one nanosecond. Keeping the unit in the type system (per
//! C-NEWTYPE) prevents the classic cycles-vs-nanoseconds confusion when
//! mixing processor latencies (cycles) with datasheet sleep-state transition
//! latencies (microseconds).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// Absolute simulation time or an unsigned duration, in processor cycles at
/// the nominal 1 GHz clock (1 cycle = 1 ns).
///
/// # Examples
///
/// ```
/// use tb_sim::Cycles;
///
/// let t = Cycles::from_micros(10); // a 10 µs sleep transition
/// assert_eq!(t.as_u64(), 10_000);
/// assert_eq!(t + Cycles::new(500), Cycles::new(10_500));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Cycles(u64);

/// Nominal processor clock frequency in Hz (Table 1: 1 GHz).
pub const CLOCK_HZ: u64 = 1_000_000_000;

impl Cycles {
    /// Zero cycles; the start of simulated time.
    pub const ZERO: Cycles = Cycles(0);
    /// The greatest representable time; used as "never" for timers.
    pub const MAX: Cycles = Cycles(u64::MAX);

    /// Creates a time from a raw cycle count.
    #[inline]
    pub const fn new(cycles: u64) -> Self {
        Cycles(cycles)
    }

    /// Creates a duration from nanoseconds (1 ns = 1 cycle at 1 GHz).
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        Cycles(ns)
    }

    /// Creates a duration from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Cycles(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Cycles(ms * 1_000_000)
    }

    /// Creates a duration from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Cycles(s * 1_000_000_000)
    }

    /// Raw cycle count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The duration expressed in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / CLOCK_HZ as f64
    }

    /// The duration expressed in (fractional) microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Saturating subtraction: `self - rhs`, or zero if `rhs` is later.
    #[inline]
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction, `None` when `rhs > self`.
    #[inline]
    pub fn checked_sub(self, rhs: Cycles) -> Option<Cycles> {
        self.0.checked_sub(rhs.0).map(Cycles)
    }

    /// Signed difference `self - rhs`.
    ///
    /// A positive result means `self` is later than `rhs`; the paper's
    /// overprediction penalty (§3.3.3) is exactly
    /// `wakeup_timestamp.delta(release_timestamp)` being positive.
    #[inline]
    pub fn delta(self, rhs: Cycles) -> TimeDelta {
        TimeDelta(self.0 as i128 - rhs.0 as i128)
    }

    /// The later of two times.
    #[inline]
    pub fn max(self, other: Cycles) -> Cycles {
        Cycles(self.0.max(other.0))
    }

    /// The earlier of two times.
    #[inline]
    pub fn min(self, other: Cycles) -> Cycles {
        Cycles(self.0.min(other.0))
    }

    /// Scales the duration by a non-negative float, rounding to nearest.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    #[inline]
    pub fn scale(self, factor: f64) -> Cycles {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative, got {factor}"
        );
        Cycles((self.0 as f64 * factor).round() as u64)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

impl Add for Cycles {
    type Output = Cycles;
    #[inline]
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    #[inline]
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    /// # Panics
    ///
    /// Panics in debug builds on underflow; use
    /// [`Cycles::saturating_sub`] or [`Cycles::delta`] when the ordering is
    /// not statically known.
    #[inline]
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl SubAssign for Cycles {
    #[inline]
    fn sub_assign(&mut self, rhs: Cycles) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    #[inline]
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Div<u64> for Cycles {
    type Output = Cycles;
    #[inline]
    fn div(self, rhs: u64) -> Cycles {
        Cycles(self.0 / rhs)
    }
}

impl Rem<u64> for Cycles {
    type Output = u64;
    #[inline]
    fn rem(self, rhs: u64) -> u64 {
        self.0 % rhs
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, Add::add)
    }
}

impl From<u64> for Cycles {
    fn from(v: u64) -> Self {
        Cycles(v)
    }
}

/// Signed time difference in cycles, produced by [`Cycles::delta`].
///
/// 128-bit so that no subtraction of two valid `Cycles` can overflow.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TimeDelta(i128);

impl TimeDelta {
    /// A delta of zero.
    pub const ZERO: TimeDelta = TimeDelta(0);

    /// Raw signed cycle count.
    #[inline]
    pub const fn as_i128(self) -> i128 {
        self.0
    }

    /// `true` when the delta is strictly positive (a *late* event).
    #[inline]
    pub const fn is_positive(self) -> bool {
        self.0 > 0
    }

    /// `true` when the delta is strictly negative (an *early* event).
    #[inline]
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// Magnitude as an unsigned duration.
    #[inline]
    pub fn abs(self) -> Cycles {
        Cycles(self.0.unsigned_abs() as u64)
    }

    /// The positive part: the delta when positive, else zero.
    ///
    /// This is the paper's overprediction *penalty*: how much later than the
    /// barrier release the thread woke up.
    #[inline]
    pub fn late_by(self) -> Cycles {
        if self.0 > 0 {
            Cycles(self.0 as u64)
        } else {
            Cycles::ZERO
        }
    }
}

impl fmt::Display for TimeDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 0 {
            write!(f, "-{}", self.abs())
        } else {
            write!(f, "+{}", self.abs())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree_on_units() {
        assert_eq!(Cycles::from_micros(1), Cycles::new(1_000));
        assert_eq!(Cycles::from_millis(1), Cycles::from_micros(1_000));
        assert_eq!(Cycles::from_secs(1), Cycles::from_millis(1_000));
        assert_eq!(Cycles::from_nanos(7), Cycles::new(7));
    }

    #[test]
    fn arithmetic_roundtrips() {
        let a = Cycles::new(100);
        let b = Cycles::new(40);
        assert_eq!(a + b - b, a);
        assert_eq!(a * 3 / 3, a);
        assert_eq!((a + b) % 7, 140 % 7);
        let mut c = a;
        c += b;
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn saturating_and_checked_sub() {
        let a = Cycles::new(5);
        let b = Cycles::new(9);
        assert_eq!(a.saturating_sub(b), Cycles::ZERO);
        assert_eq!(b.saturating_sub(a), Cycles::new(4));
        assert_eq!(a.checked_sub(b), None);
        assert_eq!(b.checked_sub(a), Some(Cycles::new(4)));
    }

    #[test]
    fn delta_signs_and_late_by() {
        let release = Cycles::new(1_000);
        let woke_late = Cycles::new(1_250);
        let woke_early = Cycles::new(900);
        assert!(woke_late.delta(release).is_positive());
        assert_eq!(woke_late.delta(release).late_by(), Cycles::new(250));
        assert!(woke_early.delta(release).is_negative());
        assert_eq!(woke_early.delta(release).late_by(), Cycles::ZERO);
        assert_eq!(woke_early.delta(release).abs(), Cycles::new(100));
    }

    #[test]
    fn scale_rounds_to_nearest() {
        assert_eq!(Cycles::new(10).scale(0.25), Cycles::new(3)); // 2.5 rounds to 3
        assert_eq!(Cycles::new(1000).scale(1.5), Cycles::new(1500));
        assert_eq!(Cycles::new(123).scale(0.0), Cycles::ZERO);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn scale_rejects_negative() {
        let _ = Cycles::new(1).scale(-1.0);
    }

    #[test]
    fn display_picks_readable_unit() {
        assert_eq!(Cycles::new(12).to_string(), "12ns");
        assert_eq!(Cycles::from_micros(10).to_string(), "10.000us");
        assert_eq!(Cycles::from_millis(3).to_string(), "3.000ms");
        assert_eq!(Cycles::from_secs(2).to_string(), "2.000s");
        assert_eq!(Cycles::new(1_250).to_string(), "1.250us");
    }

    #[test]
    fn delta_display() {
        assert_eq!(Cycles::new(10).delta(Cycles::new(4)).to_string(), "+6ns");
        assert_eq!(Cycles::new(4).delta(Cycles::new(10)).to_string(), "-6ns");
    }

    #[test]
    fn sum_of_cycles() {
        let total: Cycles = [1u64, 2, 3].into_iter().map(Cycles::new).sum();
        assert_eq!(total, Cycles::new(6));
    }

    #[test]
    fn float_views() {
        assert!((Cycles::from_secs(2).as_secs_f64() - 2.0).abs() < 1e-12);
        assert!((Cycles::from_micros(5).as_micros_f64() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn min_max() {
        let a = Cycles::new(3);
        let b = Cycles::new(8);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }
}
