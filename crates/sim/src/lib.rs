#![warn(missing_docs)]
//! Discrete-event simulation kernel used by the thrifty-barrier reproduction.
//!
//! This crate is deliberately generic: it knows nothing about processors,
//! caches, or barriers. It provides the four ingredients every component of
//! the simulated machine shares:
//!
//! * [`time`] — strongly-typed simulation time ([`Cycles`]) at the nominal
//!   1 GHz clock of the paper's Table 1, where one cycle equals one
//!   nanosecond, plus human-readable formatting.
//! * [`event`] — a cancellable priority event queue ([`EventQueue`]) with
//!   deterministic FIFO ordering among same-time events.
//! * [`stats`] — online statistics ([`OnlineStats`]), histograms, and
//!   counters used by the reporting layers.
//! * [`rng`] — a deterministic, splittable random-number source
//!   ([`SimRng`]) so every experiment is reproducible from a single seed.
//!
//! # Examples
//!
//! ```
//! use tb_sim::{Cycles, EventQueue};
//!
//! let mut q = EventQueue::new();
//! q.schedule(Cycles::new(10), "late");
//! let early = q.schedule(Cycles::new(5), "early");
//! assert_eq!(q.pop(), Some((Cycles::new(5), "early")));
//! assert!(!q.cancel(early)); // already delivered
//! ```

pub mod digest;
pub mod event;
pub mod rng;
pub mod stats;
pub mod time;

pub use event::{EventId, EventQueue};
pub use rng::SimRng;
pub use stats::{Counter, Histogram, OnlineStats, QuantileSketch};
pub use time::{Cycles, TimeDelta};
