//! Deterministic, splittable randomness for reproducible experiments.
//!
//! Every experiment in the repository is driven by a single `u64` seed.
//! Components derive independent streams with [`SimRng::derive`], so adding
//! an RNG consumer in one module never perturbs the draws seen by another —
//! the property that keeps paper-figure regressions meaningful.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// A seeded random source with named sub-stream derivation and the
/// distributions the workload models need (normal, lognormal, exponential,
/// Pareto) implemented directly so no extra dependency is required.
///
/// # Examples
///
/// ```
/// use tb_sim::SimRng;
///
/// let mut a = SimRng::new(42).derive("thread", 3);
/// let mut b = SimRng::new(42).derive("thread", 3);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed + path => same draws
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    seed: u64,
    inner: SmallRng,
}

/// 64-bit mix (splitmix64 finalizer) used for stream derivation.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn hash_label(label: &str) -> u64 {
    // FNV-1a over the label bytes; only stability matters, not quality,
    // because the result is passed through `mix`.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in label.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl SimRng {
    /// Creates the root stream for a run.
    pub fn new(seed: u64) -> Self {
        SimRng {
            seed,
            inner: SmallRng::seed_from_u64(mix(seed)),
        }
    }

    /// The seed this stream was created from (root seed mixed with the
    /// derivation path).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child stream identified by `(label, index)`.
    ///
    /// Derivation depends only on the parent's seed and the path, never on
    /// how many values the parent has already drawn.
    pub fn derive(&self, label: &str, index: u64) -> SimRng {
        let child = mix(self.seed ^ hash_label(label).rotate_left(17) ^ mix(index));
        SimRng::new(child)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform draw in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "uniform_range requires lo < hi ({lo}..{hi})");
        lo + self.uniform() * (hi - lo)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        self.inner.gen_range(0..n)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Standard normal draw (Box–Muller; one value per call, the pair's
    /// second value is discarded for simplicity).
    pub fn standard_normal(&mut self) -> f64 {
        loop {
            let u1 = self.uniform();
            if u1 > 1e-300 {
                let u2 = self.uniform();
                return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            }
        }
    }

    /// Normal draw with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.standard_normal()
    }

    /// Lognormal draw: `exp(N(mu, sigma))`.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Exponential draw with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean <= 0`.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive, got {mean}");
        let u = loop {
            let u = self.uniform();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Pareto draw with scale `xm > 0` and shape `alpha > 0` (heavy tail;
    /// used to model the occasional straggler thread).
    ///
    /// # Panics
    ///
    /// Panics if `xm <= 0` or `alpha <= 0`.
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        assert!(
            xm > 0.0 && alpha > 0.0,
            "pareto requires positive parameters"
        );
        let u = loop {
            let u = self.uniform();
            if u > 0.0 {
                break u;
            }
        };
        xm / u.powf(1.0 / alpha)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derivation_is_path_dependent_not_draw_dependent() {
        let root = SimRng::new(99);
        let mut consumed = SimRng::new(99);
        for _ in 0..10 {
            consumed.next_u64();
        }
        let mut a = root.derive("x", 0);
        let mut b = consumed.derive("x", 0);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn derivation_separates_labels_and_indices() {
        let root = SimRng::new(5);
        let mut x0 = root.derive("x", 0);
        let mut x1 = root.derive("x", 1);
        let mut y0 = root.derive("y", 0);
        let a = x0.next_u64();
        assert_ne!(a, x1.next_u64());
        assert_ne!(a, y0.next_u64());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_range_bounds() {
        let mut r = SimRng::new(4);
        for _ in 0..1_000 {
            let v = r.uniform_range(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn normal_moments_approximately_correct() {
        let mut r = SimRng::new(11);
        let mut s = crate::stats::OnlineStats::new();
        for _ in 0..50_000 {
            s.push(r.normal(10.0, 2.0));
        }
        assert!((s.mean() - 10.0).abs() < 0.05, "mean {}", s.mean());
        assert!((s.std_dev() - 2.0).abs() < 0.05, "sd {}", s.std_dev());
    }

    #[test]
    fn exponential_mean_approximately_correct() {
        let mut r = SimRng::new(12);
        let mut s = crate::stats::OnlineStats::new();
        for _ in 0..50_000 {
            s.push(r.exponential(5.0));
        }
        assert!((s.mean() - 5.0).abs() < 0.15, "mean {}", s.mean());
        assert!(s.min().unwrap() >= 0.0);
    }

    #[test]
    fn pareto_respects_scale() {
        let mut r = SimRng::new(13);
        for _ in 0..1_000 {
            assert!(r.pareto(2.0, 3.0) >= 2.0);
        }
    }

    #[test]
    fn lognormal_is_positive() {
        let mut r = SimRng::new(14);
        for _ in 0..1_000 {
            assert!(r.lognormal(0.0, 1.0) > 0.0);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(15);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(r.chance(2.0)); // clamped
    }

    #[test]
    fn below_is_in_range() {
        let mut r = SimRng::new(16);
        for _ in 0..1_000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(17);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "astronomically unlikely identity"
        );
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        SimRng::new(1).below(0);
    }
}
