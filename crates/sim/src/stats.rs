//! Online statistics used by the machine's reporting layers.
//!
//! Everything here is streaming (O(1) memory per sample) because the
//! evaluation runs observe millions of barrier and memory events.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Streaming count/mean/variance/min/max accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use tb_sim::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

/// `Default` must agree with [`OnlineStats::new`]: a derived default would
/// start `min`/`max` at 0.0, which corrupts the extrema of any stream that
/// never crosses zero (e.g. all-positive latencies would report min 0.0).
impl Default for OnlineStats {
    fn default() -> Self {
        OnlineStats::new()
    }
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divide by N), or 0.0 with fewer than one sample.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divide by N−1), or 0.0 with fewer than two samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Coefficient of variation (σ/µ), or 0.0 when the mean is zero.
    ///
    /// The paper's Figure 3 argument is exactly a CV comparison: PC-indexed
    /// BIT has a much smaller CV than BST.
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.std_dev() / m.abs()
        }
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for OnlineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.count,
            self.mean(),
            self.std_dev(),
            self.min().unwrap_or(f64::NAN),
            self.max().unwrap_or(f64::NAN)
        )
    }
}

/// A fixed-width linear histogram over `[lo, hi)` with overflow/underflow
/// buckets, for latency and stall-time distributions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    stats: OnlineStats,
}

impl Histogram {
    /// Creates a histogram with `buckets` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `buckets == 0`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(lo < hi, "histogram range must be non-empty ({lo}..{hi})");
        assert!(buckets > 0, "histogram needs at least one bucket");
        Histogram {
            lo,
            hi,
            buckets: vec![0; buckets],
            underflow: 0,
            overflow: 0,
            stats: OnlineStats::new(),
        }
    }

    /// Records one sample.
    pub fn push(&mut self, x: f64) {
        self.stats.push(x);
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Per-bucket counts (excluding underflow/overflow).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Count of samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of samples at or above the range's upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples recorded, including out-of-range ones.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Summary statistics over all samples.
    pub fn stats(&self) -> &OnlineStats {
        &self.stats
    }

    /// Approximate quantile `q` in `[0, 1]` from the binned data, or `None`
    /// when empty. Out-of-range mass is attributed to the extreme bins.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * n as f64).ceil().max(1.0) as u64;
        let mut cum = self.underflow;
        if cum >= target {
            return Some(self.lo);
        }
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Some(self.lo + width * (i as f64 + 0.5));
            }
        }
        Some(self.hi)
    }
}

/// Number of linear sub-buckets per power-of-two octave in
/// [`QuantileSketch`]. 16 sub-buckets bound the relative quantile error by
/// `1/16 ≈ 6%` per octave.
const SKETCH_SUB_BUCKETS: usize = 16;
/// Octaves covering the full `u64` range (values `0..2^64`).
const SKETCH_OCTAVES: usize = 65;

/// A mergeable log-spaced quantile sketch for non-negative integer samples
/// (latencies in cycles), HDR-histogram style: one bucket row per
/// power-of-two octave, linearly subdivided, so memory is constant
/// (`65 × 16` counters) while relative error stays below ~6% across the
/// entire `u64` range.
///
/// # Examples
///
/// ```
/// use tb_sim::QuantileSketch;
///
/// let mut s = QuantileSketch::new();
/// for v in 1..=1000u64 {
///     s.push(v);
/// }
/// let p50 = s.quantile(0.50).unwrap();
/// assert!((p50 - 500.0).abs() / 500.0 < 0.07);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuantileSketch {
    buckets: Vec<u64>,
    count: u64,
    max: u64,
}

impl QuantileSketch {
    /// Creates an empty sketch.
    pub fn new() -> Self {
        QuantileSketch {
            buckets: vec![0; SKETCH_OCTAVES * SKETCH_SUB_BUCKETS],
            count: 0,
            max: 0,
        }
    }

    fn bucket_index(v: u64) -> usize {
        if v < SKETCH_SUB_BUCKETS as u64 {
            // The first octaves are exact: one bucket per value.
            return v as usize;
        }
        let exp = 63 - v.leading_zeros() as usize;
        let sub = (v >> (exp - 4)) as usize & (SKETCH_SUB_BUCKETS - 1);
        exp * SKETCH_SUB_BUCKETS + sub
    }

    /// The representative (midpoint) value of bucket `idx`.
    fn bucket_value(idx: usize) -> f64 {
        if idx < SKETCH_SUB_BUCKETS {
            return idx as f64;
        }
        let exp = idx / SKETCH_SUB_BUCKETS;
        let sub = idx % SKETCH_SUB_BUCKETS;
        let lo = (1u128 << exp) + ((sub as u128) << (exp - 4));
        let width = 1u128 << (exp - 4);
        lo as f64 + width as f64 / 2.0
    }

    /// Records one sample.
    pub fn push(&mut self, v: u64) {
        self.buckets[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The exact largest sample, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Approximate quantile `q` in `[0, 1]`, or `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        if target >= self.count {
            // The top rank is the exact maximum; don't approximate it.
            return Some(self.max as f64);
        }
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Some(Self::bucket_value(i).min(self.max as f64));
            }
        }
        Some(self.max as f64)
    }

    /// Merges another sketch into this one (bucket-wise addition).
    pub fn merge(&mut self, other: &QuantileSketch) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.max = self.max.max(other.max);
    }
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch::new()
    }
}

impl fmt::Display for QuantileSketch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} p50={:.0} p95={:.0} p99={:.0} max={}",
            self.count,
            self.quantile(0.50).unwrap_or(0.0),
            self.quantile(0.95).unwrap_or(0.0),
            self.quantile(0.99).unwrap_or(0.0),
            self.max().unwrap_or(0)
        )
    }
}

/// A labeled monotonically increasing event counter.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zeroed() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.sum(), 0.0);
    }

    #[test]
    fn welford_matches_naive() {
        let xs = [1.5, -2.0, 3.25, 7.0, 0.0, 4.5];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.population_variance() - var).abs() < 1e-12);
        assert_eq!(s.min(), Some(-2.0));
        assert_eq!(s.max(), Some(7.0));
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64) * 0.7 - 3.0).collect();
        let mut all = OnlineStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..20] {
            a.push(x);
        }
        for &x in &xs[20..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-10);
        assert!((a.population_variance() - all.population_variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(2.0);
        let before = (a.count(), a.mean(), a.m2);
        a.merge(&OnlineStats::new());
        assert_eq!((a.count(), a.mean(), a.m2), before);

        let mut empty = OnlineStats::new();
        empty.merge(&a);
        assert_eq!(empty.count(), 2);
        assert!((empty.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn default_matches_new_and_keeps_extrema_honest() {
        // Regression: the derived `Default` used to start min/max at 0.0,
        // so an all-positive stream reported min = 0.0 (and an all-negative
        // one max = 0.0).
        let mut s = OnlineStats::default();
        s.push(5.0);
        s.push(7.0);
        assert_eq!(s.min(), Some(5.0));
        assert_eq!(s.max(), Some(7.0));

        let mut neg = OnlineStats::default();
        neg.push(-3.0);
        assert_eq!(neg.max(), Some(-3.0));
        assert_eq!(neg.min(), Some(-3.0));

        // And an untouched default reports no extrema at all.
        assert_eq!(OnlineStats::default().min(), None);
        assert_eq!(OnlineStats::default().max(), None);
    }

    #[test]
    fn cv_is_relative_dispersion() {
        let mut tight = OnlineStats::new();
        let mut loose = OnlineStats::new();
        for x in [99.0, 100.0, 101.0] {
            tight.push(x);
        }
        for x in [50.0, 100.0, 150.0] {
            loose.push(x);
        }
        assert!(tight.cv() < loose.cv());
    }

    #[test]
    fn histogram_bins_and_extremes() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [-1.0, 0.0, 0.5, 5.0, 9.99, 10.0, 42.0] {
            h.push(x);
        }
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 7);
        assert_eq!(h.buckets()[0], 2); // 0.0 and 0.5
        assert_eq!(h.buckets()[5], 1); // 5.0
        assert_eq!(h.buckets()[9], 1); // 9.99
    }

    #[test]
    fn histogram_quantiles_monotone() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..1000 {
            h.push((i % 100) as f64);
        }
        let q10 = h.quantile(0.10).unwrap();
        let q50 = h.quantile(0.50).unwrap();
        let q90 = h.quantile(0.90).unwrap();
        assert!(q10 <= q50 && q50 <= q90);
        assert!((q50 - 50.0).abs() < 2.0);
        assert_eq!(Histogram::new(0.0, 1.0, 4).quantile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "histogram range")]
    fn histogram_rejects_empty_range() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }

    #[test]
    fn sketch_is_exact_for_small_values() {
        let mut s = QuantileSketch::new();
        for v in [0u64, 1, 2, 3, 3, 3, 9] {
            s.push(v);
        }
        assert_eq!(s.count(), 7);
        assert_eq!(s.max(), Some(9));
        assert_eq!(s.quantile(0.0), Some(0.0));
        assert_eq!(s.quantile(0.5), Some(3.0));
        assert_eq!(s.quantile(1.0), Some(9.0));
    }

    #[test]
    fn sketch_quantiles_bounded_relative_error() {
        let mut s = QuantileSketch::new();
        for v in 1..=100_000u64 {
            s.push(v);
        }
        for (q, expect) in [(0.50, 50_000.0), (0.95, 95_000.0), (0.99, 99_000.0)] {
            let got = s.quantile(q).unwrap();
            assert!(
                (got - expect).abs() / expect < 0.07,
                "q{q}: got {got}, want ~{expect}"
            );
        }
        assert!(s.quantile(0.5).unwrap() <= s.quantile(0.95).unwrap());
    }

    #[test]
    fn sketch_merge_equals_sequential() {
        let mut all = QuantileSketch::new();
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        for v in 0..5_000u64 {
            all.push(v * 17);
            if v % 2 == 0 {
                a.push(v * 17);
            } else {
                b.push(v * 17);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.max(), all.max());
        assert_eq!(a.quantile(0.9), all.quantile(0.9));
    }

    #[test]
    fn sketch_handles_extreme_values() {
        let mut s = QuantileSketch::new();
        s.push(u64::MAX);
        s.push(0);
        assert_eq!(s.quantile(0.01), Some(0.0));
        // The top quantile is clamped to the exact max.
        assert_eq!(s.quantile(1.0), Some(u64::MAX as f64));
        assert_eq!(QuantileSketch::default().quantile(0.5), None);
        assert!(!s.to_string().is_empty());
    }

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(5);
        assert_eq!(c.get(), 6);
        assert_eq!(c.to_string(), "6");
    }

    #[test]
    fn stats_display_nonempty() {
        let mut s = OnlineStats::new();
        s.push(1.0);
        assert!(!s.to_string().is_empty());
    }
}
